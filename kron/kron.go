// Package kron is the public API of the extreme-scale power-law Kronecker
// graph library, a from-scratch Go reproduction of Kepner et al., "Design,
// Generation, and Validation of Extreme Scale Power-Law Graphs" (IPDPS 2018).
//
// The workflow has three stages:
//
//  1. Design: describe a graph as a Kronecker product of star graphs and
//     compute its exact properties — vertices, edges, full degree
//     distribution, triangles — with arbitrary precision, before (or
//     instead of) ever generating it.
//
//     d, _ := kron.FromPoints([]int{3, 4, 5, 9, 16, 25, 81, 256}, kron.LoopHub)
//     p, _ := d.Compute() // 11,177,649,600 vertices, 1.85e12 edges, ...
//
//  2. Generate: realize the designed graph in parallel with no
//     inter-worker communication; each worker owns an equal share of the
//     edges.
//
//     g, _ := kron.NewGenerator(d, 6)
//     g.StreamBatches(ctx, 8, 0, func(worker int, batch []kron.Edge) error { ... })
//
//  3. Validate: measure a generated graph and confirm exact agreement with
//     the design.
//
//     r, _ := kron.Validate(ctx, d, 2, 8)
//     fmt.Println(r.ExactAgreement) // true
//
// An R-MAT (Graph500) stochastic generator is included as the baseline the
// paper contrasts with.
package kron

import (
	"context"

	"repro/internal/bigdeg"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/rmat"
	"repro/internal/star"
	"repro/internal/validate"
)

// LoopMode selects the self-loop placement on every constituent star.
type LoopMode = star.LoopMode

// Loop-placement modes (Section IV of the paper).
const (
	// LoopNone builds bipartite constituents: the product has 0 triangles.
	LoopNone = star.LoopNone
	// LoopHub loops each star's hub: the product has many triangles.
	LoopHub = star.LoopHub
	// LoopLeaf loops one point of each star: the product has few triangles.
	LoopLeaf = star.LoopLeaf
)

// ParseLoopMode converts "none", "hub", or "leaf" to a LoopMode.
func ParseLoopMode(s string) (LoopMode, error) { return star.ParseLoopMode(s) }

// StarSpec describes one constituent star graph (m̂ points plus a hub).
type StarSpec = star.Spec

// Design is a Kronecker power-law graph design with exact, closed-form
// properties. See internal/core for the full method set: NumVertices,
// NumEdges, Triangles, DegreeDistribution, Alpha, Compute, Realize, Split.
type Design = core.Design

// Properties bundles a design's exact property set.
type Properties = core.Properties

// NewDesign builds a design from explicit star specs.
func NewDesign(factors []StarSpec) (*Design, error) { return core.NewDesign(factors) }

// FromPoints builds a design from m̂ values and a loop mode — the paper's
// "star graphs with m̂ = {...}" notation.
func FromPoints(points []int, loop LoopMode) (*Design, error) {
	return core.FromPoints(points, loop)
}

// DegreeDist is an exact arbitrary-precision degree distribution.
type DegreeDist = bigdeg.Dist

// Generator is the communication-free parallel generator of Section V.
type Generator = gen.Generator

// Edge is one generated adjacency entry in global coordinates.
type Edge = gen.Edge

// DefaultStreamBatchSize is the per-worker batch size StreamBatches uses
// when the caller passes batchSize <= 0.
const DefaultStreamBatchSize = gen.DefaultBatchSize

// NewGenerator splits the design after its first nb factors into A = B ⊗ C
// and realizes both sides, ready to generate at any worker count. The
// returned Generator's hot path is StreamBatches (cancellable, batch-native
// — edges arrive in reusable per-worker []Edge batches); Stream is a
// per-edge convenience layered on top of it.
func NewGenerator(d *Design, nb int) (*Generator, error) { return gen.New(d, nb) }

// DefaultMaxCNNZ is the default bound on the C side's stored entries when a
// split point is chosen automatically: C must "fit in the memory of any one
// processor" (Section V); 2^20 entries keeps the per-worker fan-out table
// comfortably in cache-friendly territory while leaving B with the bulk of
// the distributable triples.
const DefaultMaxCNNZ = 1 << 20

// BalancedSplitPoint returns the smallest split index nb whose C-side suffix
// holds at most maxCNNZ stored entries — the automatic split the job service
// uses when a request does not pin nb. Pass maxCNNZ <= 0 for DefaultMaxCNNZ.
func BalancedSplitPoint(d *Design, maxCNNZ int64) (int, error) {
	if maxCNNZ <= 0 {
		maxCNNZ = DefaultMaxCNNZ
	}
	return d.BalancedSplitPoint(maxCNNZ)
}

// ValidationReport compares a design's predictions with measurements taken
// from its generated edges.
type ValidationReport = validate.Report

// MaxValidationEdges is the largest edge count Validate will realize in
// memory; bigger designs are validated through the design-side closed forms
// alone. Services should check a design against this bound before accepting
// a validation request. The streaming measurement engine bounds it by the
// CSR footprint (no globally sorted triple pipeline), so it sits 8× above
// the materialized engine's historical 2^27 cap.
const MaxValidationEdges = validate.MaxRealizableEdges

// Validate generates the design (split after nb factors) with np workers,
// measures vertices, edges, degree distribution, and triangles from the
// realized edges, and reports whether everything agrees exactly. The
// measurement is streaming: per-worker in-flight tallies merge into the
// degree distribution, and triangles are counted on a CSR the workers build
// in parallel — edges are never collected into one sorted list. Cancellation
// is cooperative: generation stops within one batch and triangle counting
// within one band stride of ctx cancelling. Services should pass their
// request context so abandoned validations release their cores.
func Validate(ctx context.Context, d *Design, nb, np int) (*ValidationReport, error) {
	return validate.Run(ctx, d, nb, np)
}

// RMATParams parameterizes the baseline Graph500 stochastic Kronecker
// generator.
type RMATParams = rmat.Params

// RMATEdge is one sampled R-MAT edge.
type RMATEdge = rmat.Edge

// RMATMeasured summarizes the post-hoc properties of an R-MAT sample.
type RMATMeasured = rmat.Measured

// Graph500Params returns the Graph500 reference R-MAT parameters
// (a=0.57, b=0.19, c=0.19, d=0.05) at the given scale.
func Graph500Params(scale, edgeFactor int, seed int64) RMATParams {
	return rmat.Graph500(scale, edgeFactor, seed)
}

// RMATGenerate samples an R-MAT edge list with np parallel workers.
func RMATGenerate(p RMATParams, np int) ([]RMATEdge, error) { return rmat.Generate(p, np) }

// RMATMeasure computes the post-generation properties of an R-MAT sample.
func RMATMeasure(edges []RMATEdge, n int64) RMATMeasured { return rmat.Measure(edges, n) }

// Parallel generation: the Section V algorithm end to end. A design is
// split into A = B ⊗ C; each simulated processor takes an equal slice of
// B's triples and locally forms Ap = Bp ⊗ C with no communication. The
// example shows the per-worker load balance, writes one edge-list chunk per
// worker (the natural distributed output), reads the chunks back, and
// checks the reassembled graph's edge count against the design — then
// sweeps the worker count to show Figure 3's linear scaling shape.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"repro/internal/gen"
	"repro/internal/graphio"
	"repro/internal/sparse"
	"repro/kron"
)

func main() {
	design, err := kron.FromPoints([]int{3, 4, 5, 9, 16}, kron.LoopNone)
	if err != nil {
		log.Fatal(err)
	}
	g, err := kron.NewGenerator(design, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("design %v: %d vertices, %d edges\n", design, g.NumVertices(), g.NumEdges())
	fmt.Printf("split: nnz(B) = %d work units, nnz(C) = %d fan-out\n", g.BNNZ(), g.CNNZ())

	// Materialize per-worker parts and show the balance.
	const np = 4
	parts, err := g.Materialize(np)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nper-worker output (%d workers):\n", np)
	for _, p := range parts {
		fmt.Printf("  worker %d: %d edges, column offset %d\n",
			p.Worker, p.Ap.NNZ(), p.ColOffset)
	}

	// Write one chunk per worker, as a distributed run would, then read the
	// chunks back and verify the total.
	dir, err := os.MkdirTemp("", "krongen")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	global := make([]*sparse.COO[int64], len(parts))
	for i, p := range parts {
		m, err := g.Assemble([]gen.Part{p})
		if err != nil {
			log.Fatal(err)
		}
		global[i] = m
	}
	paths, err := graphio.WriteChunks(dir, "edges", global)
	if err != nil {
		log.Fatal(err)
	}
	whole, err := graphio.ReadChunks(paths, int(g.NumVertices()), int(g.NumVertices()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote and re-read %d chunks: %d edges total (design says %d)\n",
		len(paths), whole.NNZ(), g.NumEdges())

	// Rate sweep: the Figure 3 experiment shape.
	fmt.Println("\nedge generation rate vs workers:")
	for w := 1; w <= runtime.GOMAXPROCS(0)*2; w *= 2 {
		start := time.Now()
		total, _, err := g.CountEdges(context.Background(), w)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %2d workers: %.3e edges/s\n",
			w, float64(total)/time.Since(start).Seconds())
	}
}

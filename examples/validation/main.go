// Validation: the predicted-vs-measured experiment of Figure 4 at laptop
// scale. A designed graph is generated in parallel, its degree distribution,
// edge count, and triangle count are measured from the realized edges alone,
// and every measurement must agree exactly with the design-time prediction.
// The same comparison is then shown failing for an R-MAT graph, whose
// properties cannot be known until after generation.
package main

import (
	"context"
	"fmt"
	"log"
	"runtime"
	"sort"

	"repro/kron"
)

func main() {
	workers := runtime.GOMAXPROCS(0)

	// Designed graph: every property known in advance, verified exactly.
	design, err := kron.FromPoints([]int{3, 4, 5, 9, 16}, kron.LoopHub)
	if err != nil {
		log.Fatal(err)
	}
	report, err := kron.Validate(context.Background(), design, 3, workers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== Kronecker design: predicted vs measured ==")
	fmt.Print(report)

	// Show a slice of the degree distribution both ways.
	fmt.Println("\nfirst predicted vs measured degree-distribution points:")
	pred := report.PredictedDegrees.Entries()
	meas := report.MeasuredDegrees.Entries()
	n := 8
	if len(pred) < n {
		n = len(pred)
	}
	fmt.Printf("%-12s %-16s %s\n", "degree", "predicted n(d)", "measured n(d)")
	for i := 0; i < n; i++ {
		fmt.Printf("%-12s %-16s %s\n", pred[i].D, pred[i].N, meas[i].N)
	}

	// The R-MAT contrast: nominal parameters say nothing exact about the
	// realized graph.
	fmt.Println("\n== R-MAT baseline: nominal vs realized ==")
	params := kron.Graph500Params(14, 12, 99)
	edges, err := kron.RMATGenerate(params, workers)
	if err != nil {
		log.Fatal(err)
	}
	m := kron.RMATMeasure(edges, params.NumVertices())
	fmt.Printf("nominal: %d vertices, %d edge samples\n",
		params.NumVertices(), params.NumSampledEdges())
	fmt.Printf("realized: %d unique edges (%d duplicates, %d self-loops), %d empty vertices\n",
		m.UniqueEdges, m.DuplicateSamples, m.SelfLoops, m.EmptyVertices)
	fmt.Println("largest R-MAT degrees (knowable only after generation):")
	type dc struct{ d, c int64 }
	var hist []dc
	for d, c := range m.DegreeHist {
		hist = append(hist, dc{d, c})
	}
	sort.Slice(hist, func(i, j int) bool { return hist[i].d > hist[j].d })
	for i := 0; i < 5 && i < len(hist); i++ {
		fmt.Printf("  n(%d) = %d\n", hist[i].d, hist[i].c)
	}

	// Designed max degree, by contrast, was known beforehand:
	md, err := design.MaxDegree()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndesigned graph's max degree was known in advance: %s\n", md)
}

// Design search: the workflow the paper's introduction promises. A graph
// designer needs a test graph with a specific edge count, a power-law
// degree distribution, and known triangle structure. Instead of generating
// random graphs until one fits, search the Kronecker design space in closed
// form, inspect each hit's exact properties (including its spectral
// radius), and only then — optionally — generate.
package main

import (
	"context"
	"fmt"
	"log"
	"math/big"
	"runtime"
	"time"

	"repro/kron"
)

func main() {
	// Requirement: ~10 billion edges, rich triangle structure, ±2%.
	target := new(big.Int).Mul(big.NewInt(10), big.NewInt(1_000_000_000))
	fmt.Printf("requirement: %s edges (±2%%), hub-loop triangles\n\n", target)

	start := time.Now()
	results, err := kron.FindDesigns(target, kron.SearchOptions{
		Candidates: []int{3, 4, 5, 7, 9, 11, 16, 25, 49, 81, 121, 256, 625},
		Loop:       kron.LoopHub,
		MinFactors: 2,
		MaxFactors: 10,
		Tol:        0.02,
		MaxResults: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("search found %d designs in %v:\n\n", len(results), time.Since(start))

	for i, r := range results {
		d, err := kron.FromPoints(r.Points, kron.LoopHub)
		if err != nil {
			log.Fatal(err)
		}
		p, err := d.Compute()
		if err != nil {
			log.Fatal(err)
		}
		radius, err := kron.SpectralRadius(d)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("candidate %d: m̂ = %v\n", i+1, r.Points)
		fmt.Printf("  edges      %s (%.3f%% from target)\n", p.Edges, 100*r.RelErr)
		fmt.Printf("  vertices   %s\n", p.Vertices)
		fmt.Printf("  triangles  %s\n", p.Triangles)
		fmt.Printf("  max degree %s, alpha %.4f, spectral radius %.1f\n\n",
			p.MaxDegree, p.Alpha, radius)
	}

	// Pick the best, then prove the pipeline end to end at a reduced scale
	// (drop the largest factors; the code path is identical).
	best := results[0].Points
	reduced := best
	for len(reduced) > 3 {
		reduced = reduced[:len(reduced)-1]
	}
	d, err := kron.FromPoints(reduced, kron.LoopHub)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := kron.Validate(context.Background(), d, 2, runtime.GOMAXPROCS(0))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("end-to-end check on the reduced design m̂ = %v:\n%s", reduced, rep)
}

// Graph500-style BFS: the benchmark kernel these generators exist to feed.
// A designed Kronecker graph is generated and searched breadth-first from
// sampled roots, reporting traversed edges per second (TEPS). The same
// kernel then runs on an R-MAT graph, which first needs the reindexing
// cleanup the paper's generator avoids (no empty vertices, no duplicates,
// no self-loops to strip).
package main

import (
	"fmt"
	"log"
	"math/rand"
	"runtime"
	"time"

	"repro/internal/sparse"
	"repro/kron"
)

func main() {
	workers := runtime.GOMAXPROCS(0)

	// --- Designed Kronecker graph: usable as generated. ---
	design, err := kron.FromPoints([]int{3, 4, 5, 9, 16}, kron.LoopHub)
	if err != nil {
		log.Fatal(err)
	}
	props, err := design.Compute()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("designed graph: %s vertices, %s edges (known before generation)\n",
		props.Vertices, props.Edges)

	g, err := kron.Analyze(design)
	if err != nil {
		log.Fatal(err)
	}
	runBFSKernel("kronecker", g, 16)

	// --- R-MAT baseline: generate, then clean, then traverse. ---
	params := kron.Graph500Params(14, 16, 31)
	edges, err := kron.RMATGenerate(params, workers)
	if err != nil {
		log.Fatal(err)
	}
	m := kron.RMATMeasure(edges, params.NumVertices())
	fmt.Printf("\nR-MAT graph: %d unique edges after dropping %d duplicates and %d self-loops; %d empty vertices require reindexing\n",
		m.UniqueEdges, m.DuplicateSamples, m.SelfLoops, m.EmptyVertices)

	cleaned := cleanRMAT(edges)
	g2, err := kron.AnalyzeMatrix(cleaned)
	if err != nil {
		log.Fatal(err)
	}
	runBFSKernel("rmat", g2, 16)
}

// runBFSKernel samples roots and reports mean TEPS over the searches.
func runBFSKernel(name string, g *kron.Graph, roots int) {
	rng := rand.New(rand.NewSource(7))
	n := g.NumVertices()
	var totalEdges float64
	var totalTime time.Duration
	reached := 0
	for i := 0; i < roots; i++ {
		root := rng.Intn(n)
		start := time.Now()
		dist, err := g.BFS(root)
		if err != nil {
			log.Fatal(err)
		}
		totalTime += time.Since(start)
		// Count traversed edges: sum of degrees of reached vertices.
		deg := g.Degrees()
		for v, d := range dist {
			if d >= 0 {
				totalEdges += float64(deg[v])
				reached++
			}
		}
	}
	teps := totalEdges / totalTime.Seconds()
	fmt.Printf("%s BFS kernel: %d roots, mean reach %d vertices, %.3e TEPS\n",
		name, roots, reached/roots, teps)
}

// cleanRMAT deduplicates, removes self-loops, symmetrizes, and reindexes an
// R-MAT sample into a usable adjacency matrix — the boilerplate the paper's
// generator renders unnecessary.
func cleanRMAT(edges []kron.RMATEdge) *sparse.COO[int64] {
	type pair = [2]int64
	uniq := make(map[pair]struct{}, len(edges))
	for _, e := range edges {
		if e.Src == e.Dst {
			continue
		}
		uniq[pair{e.Src, e.Dst}] = struct{}{}
		uniq[pair{e.Dst, e.Src}] = struct{}{}
	}
	ids := make(map[int64]int)
	var tr []sparse.Triple[int64]
	id := func(v int64) int {
		if i, ok := ids[v]; ok {
			return i
		}
		i := len(ids)
		ids[v] = i
		return i
	}
	for p := range uniq {
		tr = append(tr, sparse.Triple[int64]{Row: id(p[0]), Col: id(p[1]), Val: 1})
	}
	return sparse.MustCOO(len(ids), len(ids), tr)
}

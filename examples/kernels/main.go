// GraphBLAS-style kernels: the paper notes its generator "is ideally suited
// to the GraphBLAS.org software standard". This example runs the library's
// semiring linear-algebra kernels — BFS (∨.∧), SSSP (min.+), PageRank
// (+.×), and connected components — on a designed Kronecker graph, and
// cross-checks each against a designed property or an independent
// combinatorial implementation.
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/analyze"
	"repro/internal/kernels"
	"repro/internal/semiring"
	"repro/internal/sparse"
	"repro/kron"
)

func main() {
	design, err := kron.FromPoints([]int{3, 4, 5, 9}, kron.LoopHub)
	if err != nil {
		log.Fatal(err)
	}
	adj, err := design.Realize()
	if err != nil {
		log.Fatal(err)
	}
	props, err := design.Compute()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("designed graph: %s vertices, %s edges, %s triangles\n\n",
		props.Vertices, props.Edges, props.Triangles)

	// BFS with the boolean (∨, ∧) semiring, checked against combinatorial BFS.
	boolAdj := kernels.BoolFromInt64(adj)
	levels, err := kernels.BFSLevels(boolAdj, 0)
	if err != nil {
		log.Fatal(err)
	}
	g, err := analyze.NewGraph(adj)
	if err != nil {
		log.Fatal(err)
	}
	ref, err := g.BFS(0)
	if err != nil {
		log.Fatal(err)
	}
	maxLevel, agree := 0, true
	for v := range levels {
		if levels[v] != ref[v] {
			agree = false
		}
		if levels[v] > maxLevel {
			maxLevel = levels[v]
		}
	}
	fmt.Printf("BFS (∨.∧ semiring): eccentricity of the hub-of-hubs = %d; agrees with combinatorial BFS: %v\n",
		maxLevel, agree)

	// SSSP with the (min, +) semiring on unit weights equals BFS levels.
	sp := semiring.MinPlus()
	var wtr []sparse.Triple[float64]
	for _, e := range adj.Tr {
		wtr = append(wtr, sparse.Triple[float64]{Row: e.Row, Col: e.Col, Val: 1})
	}
	wadj := sparse.MustCOO(adj.NumRows, adj.NumCols, wtr).ToCSR(sp)
	dist, err := kernels.SSSP(wadj, 0)
	if err != nil {
		log.Fatal(err)
	}
	same := true
	for v := range levels {
		if float64(levels[v]) != dist[v] {
			same = false
		}
	}
	fmt.Printf("SSSP (min.+ semiring): unit-weight distances equal BFS levels: %v\n", same)

	// PageRank (+,×) power iteration: scores sum to 1, hub dominates.
	sr := semiring.PlusTimesInt64()
	pr, err := kernels.PageRank(adj.ToCSR(sr), 0.85, 1e-12, 500)
	if err != nil {
		log.Fatal(err)
	}
	type vs struct {
		v int
		s float64
	}
	ranked := make([]vs, len(pr.Scores))
	total := 0.0
	for v, s := range pr.Scores {
		ranked[v] = vs{v, s}
		total += s
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].s > ranked[j].s })
	fmt.Printf("PageRank (+.× iteration): converged in %d iterations, Σscores = %.6f\n",
		pr.Iterations, total)
	fmt.Println("  top vertices:")
	for _, r := range ranked[:3] {
		fmt.Printf("    vertex %5d  score %.6f\n", r.v, r.s)
	}

	// Connected components: the kernel must agree with the designer's
	// Weichsel prediction (hub-loop designs are connected).
	_, k, err := kernels.Components(adj.ToCSR(sr))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("components (label propagation): %d measured, %s predicted at design time\n",
		k, design.PredictedComponents())

	// And the Figure 1 contrast: a plain-star design splits into 2^(N-1)
	// bipartite pieces, also known before generation.
	plain, err := kron.FromPoints([]int{3, 4, 5}, kron.LoopNone)
	if err != nil {
		log.Fatal(err)
	}
	plainAdj, err := plain.Realize()
	if err != nil {
		log.Fatal(err)
	}
	_, pk, err := kernels.Components(plainAdj.ToCSR(sr))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plain-star design %v: %d components measured, %s predicted (Weichsel)\n",
		plain, pk, plain.PredictedComponents())
}

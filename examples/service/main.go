// The service example is a Go-client round trip against kronserve: design →
// generate → stream → validate, the full workflow of the paper over HTTP.
//
// By default it starts an in-process server on a loopback port so it runs
// with no setup; point it at a real kronserve with -addr:
//
//	go run ./examples/service                       # self-contained
//	kronserve -addr :8080 &                         # or against a server
//	go run ./examples/service -addr http://localhost:8080
//
// The equivalent curl session is printed as it goes (and documented in
// README.md).
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"

	"repro/internal/service"
)

func main() {
	addr := flag.String("addr", "", "base URL of a running kronserve (empty = start one in-process)")
	flag.Parse()
	if err := run(*addr); err != nil {
		fmt.Fprintln(os.Stderr, "service example:", err)
		os.Exit(1)
	}
}

func run(base string) error {
	if base == "" {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		svc := service.New(service.Config{})
		defer svc.Close()
		go func() { _ = http.Serve(ln, svc.Handler()) }()
		defer ln.Close()
		base = "http://" + ln.Addr().String()
		fmt.Printf("started in-process kronserve at %s\n\n", base)
	}

	design := map[string]any{"points": []int{3, 4, 5, 9}, "loop": "hub"}

	// 1. Design: exact properties, no generation.
	fmt.Println(`# curl -X POST $KRONSERVE/v1/designs -d '{"points":[3,4,5,9],"loop":"hub"}'`)
	var props struct {
		Vertices  string  `json:"vertices"`
		Edges     string  `json:"edges"`
		Triangles string  `json:"triangles"`
		Alpha     float64 `json:"alpha"`
	}
	if err := postJSON(base+"/v1/designs", design, &props); err != nil {
		return err
	}
	fmt.Printf("designed graph: %s vertices, %s edges, %s triangles, alpha %.4f\n\n",
		props.Vertices, props.Edges, props.Triangles, props.Alpha)

	// 2. Generate: start a 4-worker streaming job.
	fmt.Println(`# curl -X POST $KRONSERVE/v1/jobs -d '{"points":[3,4,5,9],"loop":"hub","workers":4}'`)
	job := map[string]any{"points": []int{3, 4, 5, 9}, "loop": "hub", "workers": 4}
	var status struct {
		ID         string `json:"id"`
		State      string `json:"state"`
		TotalEdges int64  `json:"totalEdges"`
	}
	if err := postJSON(base+"/v1/jobs", job, &status); err != nil {
		return err
	}
	fmt.Printf("job %s admitted (%s), %d edges to generate\n\n", status.ID, status.State, status.TotalEdges)

	// 3. Stream: drain the chunked TSV edge stream.
	fmt.Printf("# curl $KRONSERVE/v1/jobs/%s/edges\n", status.ID)
	resp, err := http.Get(base + "/v1/jobs/" + status.ID + "/edges")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("edges: %s", resp.Status)
	}
	var edges int64
	var shown int
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") {
			fmt.Println("  ", line)
			continue
		}
		if shown < 3 {
			fmt.Println("  ", line)
			shown++
		} else if shown == 3 {
			fmt.Println("   ...")
			shown++
		}
		edges++
	}
	if err := sc.Err(); err != nil {
		return err
	}
	fmt.Printf("streamed %d edges (design promised %d)\n\n", edges, status.TotalEdges)

	// 4. Validate: measured properties must equal the design exactly.
	fmt.Printf("# curl $KRONSERVE/v1/validate/%s\n", status.ID)
	var val struct {
		ExactAgreement bool     `json:"exactAgreement"`
		MeasuredEdges  int64    `json:"measuredEdges"`
		Mismatches     []string `json:"mismatches"`
	}
	if err := getJSON(base+"/v1/validate/"+status.ID, &val); err != nil {
		return err
	}
	if !val.ExactAgreement {
		return fmt.Errorf("validation failed: %v", val.Mismatches)
	}
	fmt.Printf("validation: exact agreement (measured %d edges)\n", val.MeasuredEdges)
	return nil
}

func postJSON(url string, body, out any) error {
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return fmt.Errorf("POST %s: %s: %s", url, resp.Status, e.Error)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func getJSON(url string, out any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return fmt.Errorf("GET %s: %s: %s", url, resp.Status, e.Error)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

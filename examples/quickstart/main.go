// Quickstart: design a power-law Kronecker graph, read off its exact
// properties, generate it in parallel, and validate the generated edges
// against the design — the library's complete workflow in one file.
package main

import (
	"context"
	"fmt"
	"log"
	"runtime"

	"repro/kron"
)

func main() {
	// 1. Design: a Kronecker product of stars with m̂ = {3, 4, 5, 9} and a
	// self-loop on every constituent hub (Case 1: many triangles).
	design, err := kron.FromPoints([]int{3, 4, 5, 9}, kron.LoopHub)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Exact properties, before generating anything.
	props, err := design.Compute()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("designed graph %v:\n%s", design, props.Report())

	// 3. Generate in parallel: split A = B ⊗ C after two factors; every
	// worker independently produces an equal slice of the edges with no
	// communication.
	gen, err := kron.NewGenerator(design, 2)
	if err != nil {
		log.Fatal(err)
	}
	workers := runtime.GOMAXPROCS(0)
	var firstEdges []kron.Edge
	err = gen.Stream(context.Background(), workers, func(worker int, e kron.Edge) error {
		if worker == 0 && len(firstEdges) < 5 {
			firstEdges = append(firstEdges, e)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nworker 0's first edges: %v\n", firstEdges)

	// 4. Validate: regenerate, measure everything from the edges alone, and
	// confirm exact agreement with the design.
	report, err := kron.Validate(context.Background(), design, 2, workers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s", report)
}

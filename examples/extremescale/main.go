// Extreme scale: design graphs far beyond any computer — the paper's
// trillion (10¹²), quadrillion (10¹⁵), and decetta (10³⁰) edge graphs —
// and compute their exact properties on a laptop. No graph is generated;
// everything follows from the Kronecker identities of Section IV.
package main

import (
	"fmt"
	"log"
	"math/big"
	"time"

	"repro/kron"
)

func main() {
	show("Trillion-edge graph (Figure 4)",
		[]int{3, 4, 5, 9, 16, 25, 81, 256}, kron.LoopHub)
	show("Quadrillion-edge graph, zero triangles (Figure 5)",
		[]int{3, 4, 5, 9, 16, 25, 81, 256, 625}, kron.LoopNone)
	show("Quadrillion-edge graph, 10¹⁶ triangles (Figure 6)",
		[]int{3, 4, 5, 9, 16, 25, 81, 256, 625}, kron.LoopHub)
	show("Decetta-scale graph, 10³⁰ edges (Figure 7)",
		[]int{3, 4, 5, 7, 11, 9, 16, 25, 49, 81, 121, 256, 625, 2401, 14641},
		kron.LoopLeaf)
}

func show(title string, points []int, loop kron.LoopMode) {
	start := time.Now()
	d, err := kron.FromPoints(points, loop)
	if err != nil {
		log.Fatal(err)
	}
	p, err := d.Compute()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== %s ==\n", title)
	fmt.Printf("  m̂ = %v, loops on %v\n", points, loop)
	fmt.Printf("  vertices:  %s\n", comma(p.Vertices))
	fmt.Printf("  edges:     %s\n", comma(p.Edges))
	fmt.Printf("  triangles: %s\n", comma(p.Triangles))
	fmt.Printf("  max degree %s, alpha %.4f, %d distinct degrees\n",
		comma(p.MaxDegree), p.Alpha, p.Degrees.Len())
	fmt.Printf("  computed in %v\n\n", time.Since(start))
}

// comma inserts thousands separators into a big integer's decimal form.
func comma(v *big.Int) string {
	s := v.String()
	neg := false
	if len(s) > 0 && s[0] == '-' {
		neg, s = true, s[1:]
	}
	var out []byte
	for i, c := range []byte(s) {
		if i > 0 && (len(s)-i)%3 == 0 {
			out = append(out, ',')
		}
		out = append(out, c)
	}
	if neg {
		return "-" + string(out)
	}
	return string(out)
}

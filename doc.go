// Package repro is the root of a from-scratch Go reproduction of
// Kepner et al., "Design, Generation, and Validation of Extreme Scale
// Power-Law Graphs" (IPDPS 2018 workshops, arXiv:1803.01281).
//
// The public API lives in repro/kron; the substrates live under
// repro/internal (sparse semiring linear algebra, star constituents,
// arbitrary-precision degree distributions, the communication-free parallel
// generator, an R-MAT baseline, and the validation harness). The
// design → generate → validate workflow also runs as a long-lived HTTP job
// service: repro/internal/service behind cmd/kronserve, with README.md
// walking through a curl-level round trip. The benchmarks in bench_test.go
// and cmd/kronbench regenerate every figure of the paper; see DESIGN.md for
// the architecture and per-experiment index and EXPERIMENTS.md for
// paper-vs-measured results.
package repro

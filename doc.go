// Package repro is the root of a from-scratch Go reproduction of
// Kepner et al., "Design, Generation, and Validation of Extreme Scale
// Power-Law Graphs" (IPDPS 2018 workshops, arXiv:1803.01281).
//
// The public API lives in repro/kron; the substrates live under
// repro/internal (sparse semiring linear algebra, star constituents,
// arbitrary-precision degree distributions, the communication-free parallel
// generator, an R-MAT baseline, and the validation harness). The benchmarks
// in bench_test.go regenerate every figure of the paper; see DESIGN.md for
// the per-experiment index and EXPERIMENTS.md for paper-vs-measured results.
package repro

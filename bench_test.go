// Benchmarks regenerating every figure of the paper. Each BenchmarkFigN
// corresponds to the matching figure; see DESIGN.md's per-experiment index.
// Run with: go test -bench=. -benchmem
package repro

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/gen"
	"repro/internal/rmat"
	"repro/internal/semiring"
	"repro/internal/sparse"
	"repro/internal/triangle"
	"repro/kron"
)

// BenchmarkFig1KronProduct measures the Kronecker product of two bipartite
// stars (Figure 1's construction).
func BenchmarkFig1KronProduct(b *testing.B) {
	sr := semiring.PlusTimesInt64()
	d, err := kron.FromPoints([]int{5, 3}, kron.LoopNone)
	if err != nil {
		b.Fatal(err)
	}
	factors := d.Factors()
	a1 := factors[0].Adjacency()
	a2 := factors[1].Adjacency()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sparse.Kron(a1, a2, sr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2TrianglePrediction measures the closed-form triangle count of
// the Figure 2 designs (design-side, no realization).
func BenchmarkFig2TrianglePrediction(b *testing.B) {
	d, err := kron.FromPoints([]int{5, 3}, kron.LoopHub)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := d.Triangles(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2TriangleMeasurement measures the brute-force verification of
// Figure 2's counts on the realized 24-vertex graph.
func BenchmarkFig2TriangleMeasurement(b *testing.B) {
	d, err := kron.FromPoints([]int{5, 3}, kron.LoopHub)
	if err != nil {
		b.Fatal(err)
	}
	a, err := d.Realize()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := triangle.CountBoth(a); err != nil {
			b.Fatal(err)
		}
	}
}

// fig3Generator builds the reduced Figure 3 workload once: same code path as
// the paper's trillion-edge run (C = {81,256} intact, B shrunk to laptop
// scale), ~40M edges per generation.
func fig3Generator(b *testing.B) *gen.Generator {
	b.Helper()
	d, err := kron.FromPoints([]int{3, 4, 5, 81, 256}, kron.LoopNone)
	if err != nil {
		b.Fatal(err)
	}
	g, err := kron.NewGenerator(d, 3)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkFig3EdgeRate measures the communication-free generator's edge
// rate at several worker counts; the reported edges/s metric is Figure 3's
// y-axis.
func BenchmarkFig3EdgeRate(b *testing.B) {
	g := fig3Generator(b)
	maxW := runtime.GOMAXPROCS(0) * 2
	for w := 1; w <= maxW; w *= 2 {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			var edges int64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				total, _, err := g.CountEdges(context.Background(), w)
				if err != nil {
					b.Fatal(err)
				}
				edges += total
			}
			b.ReportMetric(float64(edges)/b.Elapsed().Seconds(), "edges/s")
		})
	}
}

// paddedCount is a per-worker counter slot padded to a cache line so the
// stream benchmarks measure API overhead, not false sharing.
type paddedCount struct {
	n int64
	_ [56]byte
}

// BenchmarkStreamPerEdgeFig3 measures the per-edge streaming API on the
// Figure-3 workload: one indirect call + error check per generated edge.
func BenchmarkStreamPerEdgeFig3(b *testing.B) {
	g := fig3Generator(b)
	np := runtime.GOMAXPROCS(0)
	counts := make([]paddedCount, np)
	var edges int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := g.Stream(context.Background(), np, func(p int, e kron.Edge) error {
			counts[p].n++
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		edges += g.NumEdges()
	}
	b.ReportMetric(float64(edges)/b.Elapsed().Seconds(), "edges/s")
}

// BenchmarkStreamBatchesFig3 measures the batch-native streaming path on the
// same workload: the inner loop fills a reusable per-worker buffer and the
// callback fires once per batch.
func BenchmarkStreamBatchesFig3(b *testing.B) {
	g := fig3Generator(b)
	np := runtime.GOMAXPROCS(0)
	counts := make([]paddedCount, np)
	var edges int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := g.StreamBatches(context.Background(), np, 0, func(p int, batch []kron.Edge) error {
			counts[p].n += int64(len(batch))
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		edges += g.NumEdges()
	}
	b.ReportMetric(float64(edges)/b.Elapsed().Seconds(), "edges/s")
}

// BenchmarkFig4TrillionDesign measures computing every exact property of the
// trillion-edge hub-loop graph (Figure 4's predicted curve).
func BenchmarkFig4TrillionDesign(b *testing.B) {
	d, err := kron.FromPoints([]int{3, 4, 5, 9, 16, 25, 81, 256}, kron.LoopHub)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := d.Compute(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4Validation measures the full predicted-vs-measured pipeline
// (generate, measure degrees and triangles, compare) at reduced scale.
func BenchmarkFig4Validation(b *testing.B) {
	d, err := kron.FromPoints([]int{3, 4, 5, 9}, kron.LoopHub)
	if err != nil {
		b.Fatal(err)
	}
	np := runtime.GOMAXPROCS(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := kron.Validate(context.Background(), d, 2, np)
		if err != nil {
			b.Fatal(err)
		}
		if !r.ExactAgreement {
			b.Fatal("validation mismatch")
		}
	}
}

// BenchmarkFig5QuadrillionDesign measures the no-loop quadrillion design.
func BenchmarkFig5QuadrillionDesign(b *testing.B) {
	benchDesign(b, []int{3, 4, 5, 9, 16, 25, 81, 256, 625}, kron.LoopNone)
}

// BenchmarkFig6QuadrillionDesign measures the hub-loop quadrillion design.
func BenchmarkFig6QuadrillionDesign(b *testing.B) {
	benchDesign(b, []int{3, 4, 5, 9, 16, 25, 81, 256, 625}, kron.LoopHub)
}

// BenchmarkFig7DecettaDesign measures the 10³⁰-edge leaf-loop design — the
// paper's "few minutes on a laptop" computation.
func BenchmarkFig7DecettaDesign(b *testing.B) {
	benchDesign(b, []int{3, 4, 5, 7, 11, 9, 16, 25, 49, 81, 121, 256, 625, 2401, 14641}, kron.LoopLeaf)
}

func benchDesign(b *testing.B, points []int, loop kron.LoopMode) {
	b.Helper()
	d, err := kron.FromPoints(points, loop)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := d.Compute(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRMATGenerate measures the baseline Graph500 R-MAT sampler the
// paper contrasts with, at the worker count of the Figure 3 sweep.
func BenchmarkRMATGenerate(b *testing.B) {
	for _, scale := range []int{14, 16, 18} {
		p := rmat.Graph500(scale, 16, 42)
		b.Run(fmt.Sprintf("scale=%d", scale), func(b *testing.B) {
			np := runtime.GOMAXPROCS(0)
			var edges int64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				n := int64(0)
				err := rmat.GenerateStream(p, np, func(int, rmat.Edge) error {
					n++
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
				edges += n
			}
			b.ReportMetric(float64(edges)/b.Elapsed().Seconds(), "edges/s")
		})
	}
}

// BenchmarkAblationSplitPoint compares generation cost across B/C split
// choices — the design decision Section V leaves to the user (B carries the
// parallelism, C the per-triple fan-out).
func BenchmarkAblationSplitPoint(b *testing.B) {
	points := []int{3, 4, 5, 9, 16}
	for nb := 1; nb < len(points); nb++ {
		b.Run(fmt.Sprintf("nb=%d", nb), func(b *testing.B) {
			d, err := kron.FromPoints(points, kron.LoopNone)
			if err != nil {
				b.Fatal(err)
			}
			g, err := kron.NewGenerator(d, nb)
			if err != nil {
				b.Fatal(err)
			}
			np := runtime.GOMAXPROCS(0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := g.CountEdges(context.Background(), np); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationStreamVsMaterialize compares the streaming and
// materializing generation paths on the same design.
func BenchmarkAblationStreamVsMaterialize(b *testing.B) {
	d, err := kron.FromPoints([]int{3, 4, 5, 9}, kron.LoopNone)
	if err != nil {
		b.Fatal(err)
	}
	g, err := kron.NewGenerator(d, 2)
	if err != nil {
		b.Fatal(err)
	}
	np := runtime.GOMAXPROCS(0)
	b.Run("stream-count", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := g.CountEdges(context.Background(), np); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("materialize", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := g.Materialize(np); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDegreeDistributionDecetta isolates the most expensive design-side
// computation: combining 15 factor distributions with big-integer degrees.
func BenchmarkDegreeDistributionDecetta(b *testing.B) {
	d, err := kron.FromPoints(
		[]int{3, 4, 5, 7, 11, 9, 16, 25, 49, 81, 121, 256, 625, 2401, 14641},
		kron.LoopLeaf)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := d.DegreeDistribution(); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation and extension benchmarks: the design-search tool, spectral
// computations, distributed degree measurement, and structural analysis.
package repro

import (
	"math/big"
	"runtime"
	"testing"

	"repro/internal/search"
	"repro/internal/spectrum"
	"repro/kron"
)

// BenchmarkSearchTrillionTarget measures the closed-form design search that
// replaces R-MAT's generate-and-measure loop, aimed at the paper's trillion
// no-loop edge count.
func BenchmarkSearchTrillionTarget(b *testing.B) {
	target, _ := new(big.Int).SetString("1146617856000", 10)
	opt := search.Options{
		Candidates: []int{3, 4, 5, 7, 9, 11, 16, 25, 49, 81, 121, 256, 625},
		Loop:       kron.LoopNone,
		MinFactors: 1,
		MaxFactors: 10,
		Tol:        0.02,
		MaxResults: 10,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := search.EdgeTarget(target, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpectrumDecettaRadius measures the design-side spectral radius of
// the 10³⁰-edge graph (per-factor 3×3 eigenproblems).
func BenchmarkSpectrumDecettaRadius(b *testing.B) {
	d, err := kron.FromPoints(
		[]int{3, 4, 5, 7, 11, 9, 16, 25, 49, 81, 121, 256, 625, 2401, 14641},
		kron.LoopLeaf)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := kron.SpectralRadius(d); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpectrumFullTrillion enumerates the complete eigenvalue multiset
// of the trillion-edge design (2^8 nonzero eigenvalues + zeros).
func BenchmarkSpectrumFullTrillion(b *testing.B) {
	d, err := kron.FromPoints([]int{3, 4, 5, 9, 16, 25, 81, 256}, kron.LoopHub)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := spectrum.ProductSpectrum(d.Factors(), 1<<20); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDistributedDegrees measures the communication-light degree
// validation path (per-worker tallies + one reduction) versus full edge
// materialization.
func BenchmarkDistributedDegrees(b *testing.B) {
	d, err := kron.FromPoints([]int{3, 4, 5, 9, 16}, kron.LoopHub)
	if err != nil {
		b.Fatal(err)
	}
	g, err := kron.NewGenerator(d, 3)
	if err != nil {
		b.Fatal(err)
	}
	np := runtime.GOMAXPROCS(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := g.DegreeHistogram(np); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBetweenness measures exact Brandes betweenness on a realized
// Figure 2-scale design (future-work feature).
func BenchmarkBetweenness(b *testing.B) {
	d, err := kron.FromPoints([]int{5, 3, 4}, kron.LoopHub)
	if err != nil {
		b.Fatal(err)
	}
	g, err := kron.Analyze(d)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.BetweennessCentrality()
	}
}

// BenchmarkTriangleEnumeration measures listing (not just counting) every
// triangle of a realized design.
func BenchmarkTriangleEnumeration(b *testing.B) {
	d, err := kron.FromPoints([]int{5, 3, 4}, kron.LoopHub)
	if err != nil {
		b.Fatal(err)
	}
	g, err := kron.Analyze(d)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.EnumerateTriangles(0)
	}
}
